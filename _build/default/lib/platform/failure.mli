(** Power-failure models.

    The paper's controlled experiments emulate power failures with an
    MCU timer firing a soft reset after a uniformly distributed on-time
    in [5 ms, 20 ms] (§5.1); the real-world experiment (Fig. 13) instead
    dies when the capacitor is exhausted and reboots after it recharges
    from the RF harvester. Both models are provided, plus [No_failures]
    for continuous-power golden runs. *)

type spec =
  | No_failures  (** continuous power *)
  | Timer of {
      on_min_us : int;
      on_max_us : int;  (** uniform on-time before the soft reset *)
      off_min_us : int;
      off_max_us : int;  (** uniform off-time before reboot *)
    }
  | Energy_driven
      (** die when the capacitor empties; off-time = recharge time *)

val paper_timer : spec
(** The §5.1 emulation: on-time U[5 ms, 20 ms], off-time U[2 ms, 15 ms].
    The off-time range straddles the 10 ms freshness windows used by the
    Timely benchmarks, so some failures violate timeliness and some do
    not — as in the paper's testbed. *)

type t

val create : spec -> t
val spec : t -> spec

val arm : t -> Rng.t -> now:Units.time_us -> unit
(** Called at each boot: for the timer model, draws the next reset
    deadline. *)

val timer_fired : t -> now:Units.time_us -> bool
(** Whether the timer model's deadline has passed (always [false] for
    other models). *)

val energy_driven : t -> bool

val off_time : t -> Rng.t -> Units.time_us
(** Off-duration to apply on a timer-model reboot. *)
