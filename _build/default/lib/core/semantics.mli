(** I/O re-execution semantics (§3.1 of the paper).

    With continuous power every peripheral operation executes exactly
    once; under intermittent power an interrupted task re-executes, and
    the annotation tells the runtime whether the I/O inside it must
    repeat. *)

open Platform

type t =
  | Single
      (** execute at most once per task execution instance: if the
          operation completed in a previous energy cycle, skip it and
          restore its recorded result (e.g. a radio send, an NV→NV DMA) *)
  | Timely of Units.time_us
      (** like [Single] while the last result is fresh; re-execute once
          more than the given interval has elapsed since the last
          successful execution (e.g. sensor readings) *)
  | Always
      (** re-execute after every reboot — the implicit policy of
          existing task-based systems *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val stale : t -> elapsed:Units.time_us -> bool
(** [stale sem ~elapsed] — given that the operation completed
    [elapsed] ago, must it re-execute? *)
