open Platform

type t = Single | Timely of Units.time_us | Always

let to_string = function
  | Single -> "Single"
  | Timely d -> Printf.sprintf "Timely(%dus)" d
  | Always -> "Always"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let stale t ~elapsed =
  match t with Single -> false | Timely d -> elapsed > d | Always -> true
