lib/core/semantics.mli: Format Platform Units
