lib/core/runtime.mli: Kernel Loc Machine Platform Semantics
