lib/core/runtime.ml: Fun Hashtbl Kernel List Loc Machine Memory Option Periph Platform Printf Semantics Timekeeper
