lib/core/semantics.ml: Format Platform Printf Units
