(** Low Energy Accelerator (vector math coprocessor).

    The MSP430FR5994's LEA executes vector operations over a dedicated
    4 KB window of SRAM ("LEA-RAM") while the CPU sleeps. Operands must
    live in volatile LEA-RAM, which is why the paper's FIR and DNN
    workloads DMA-stage data from FRAM into LEA-RAM, compute, and stage
    results back — the pattern that creates Private-DMA cases.

    All operands are Q15-style integers; products are scaled by
    [>> shift] to stay in range. *)

open Platform

val leram_words : int
(** Size of the LEA-RAM window (2 Ki words = 4 KB). *)

val alloc_leram : Machine.t -> name:string -> words:int -> int
(** Allocate from the LEA-RAM window (a reserved SRAM region). *)

val vector_mac : ?shift:int -> Machine.t -> a:int -> b:int -> len:int -> int
(** [vector_mac m ~a ~b ~len] computes [sum (a.(i) * b.(i)) >> shift]
    over SRAM addresses; charges setup + per-element costs and bumps
    ["io:LEA"]. *)

val fir : ?shift:int -> Machine.t -> input:int -> coeffs:int -> taps:int -> output:int -> samples:int -> unit
(** Finite-impulse-response block: [output.(i) = sum_j input.(i+j) *
    coeffs.(j) >> shift] for [i < samples]. All addresses in SRAM; the
    input window must hold [samples + taps - 1] words. One LEA command
    (single setup, per-MAC element cost), one ["io:LEA"] bump. *)

val vector_add : Machine.t -> a:int -> b:int -> dst:int -> len:int -> unit
(** Elementwise add over SRAM. *)

val vector_max : Machine.t -> a:int -> len:int -> int
(** Index of the maximum element (argmax); used by inference layers. *)
