lib/periph/dma.mli: Loc Machine Platform
