lib/periph/radio.mli: Loc Machine Platform Units
