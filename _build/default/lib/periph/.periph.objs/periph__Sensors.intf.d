lib/periph/sensors.mli: Machine Platform
