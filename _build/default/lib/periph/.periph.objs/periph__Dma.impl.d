lib/periph/dma.ml: Cost Loc Machine Memory Platform
