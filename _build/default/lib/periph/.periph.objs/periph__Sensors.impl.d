lib/periph/sensors.ml: Machine Platform World
