lib/periph/radio.ml: Array List Loc Machine Platform Units
