lib/periph/lea.mli: Machine Platform
