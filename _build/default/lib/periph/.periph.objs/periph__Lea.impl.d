lib/periph/lea.ml: Cost Machine Memory Platform Printf
