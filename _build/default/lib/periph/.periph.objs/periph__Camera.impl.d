lib/periph/camera.ml: Loc Machine Platform World
