lib/periph/camera.mli: Loc Machine Platform
