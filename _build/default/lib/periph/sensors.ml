open Platform

let sample m ~event ~us ~nj read =
  Machine.bump m event;
  Machine.charge m ~us ~nj;
  read (Machine.world m) (Machine.now m)

let temperature_dc m = sample m ~event:"io:Temp" ~us:900 ~nj:700. World.temperature_dc
let humidity_pct m = sample m ~event:"io:Humd" ~us:700 ~nj:550. World.humidity_pct
let pressure_pa10 m = sample m ~event:"io:Pres" ~us:600 ~nj:450. World.pressure_pa10
let light_lux m = sample m ~event:"io:Light" ~us:400 ~nj:300. World.light_lux
