(** Direct memory access engine.

    DMA moves blocks between memory spaces without CPU involvement and —
    crucially for this paper — without passing through any runtime's
    variable mediation: a task-based runtime that privatizes CPU
    accesses to non-volatile variables cannot see DMA writes, which is
    what makes re-executed DMA a source of idempotence bugs.

    Transfers are charged chunk-by-chunk, so a power failure can leave a
    *partial* copy behind, exactly like real hardware. *)

open Platform

val chunk_words : int
(** Transfer granularity for failure interleaving (16 words). *)

val copy : Machine.t -> src:Loc.t -> dst:Loc.t -> words:int -> unit
(** [copy m ~src ~dst ~words] programs and runs one DMA transfer.
    Charges the setup cost plus a per-word cost; bumps the ["io:DMA"]
    event counter once per started transfer (an interrupted transfer is
    still spent I/O work). May raise {!Machine.Power_failure}
    mid-copy. *)
