(** Packet radio.

    Transmission is the most energy-hungry operation on the board; the
    paper's headline example of wasted I/O is re-sending a packet that
    already went out before the power failure. Sent packets land in a
    receiver-side log that survives the device's power failures (the
    base station has mains power), so tests can observe duplicate
    transmissions. *)

open Platform

type t

val create : Machine.t -> t

val send : t -> int array -> unit
(** Transmit a packet; ~2 ms preamble + 40 µs/word, high energy. Bumps
    ["io:Send"]. The packet is appended to the receiver log only when
    the transmission completes. *)

val send_from : t -> src:Loc.t -> words:int -> unit
(** Transmit straight out of memory (charged reads). *)

val log : t -> (Units.time_us * int array) list
(** Received packets, oldest first. *)

val packets_sent : t -> int
