(** Camera.

    The paper simulates image capture by running the MCU in a delay loop
    (§5.4.1); we do the same — a fixed exposure interval during which the
    imager draws power — and then deposit the frame (sampled from the
    world at completion time) into memory with charged writes. Bumps
    ["io:Capture"] once per started exposure. *)

open Platform

val capture : ?exposure_us:int -> Machine.t -> dst:Loc.t -> pixels:int -> unit
