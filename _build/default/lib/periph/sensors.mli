(** External sensors.

    Each read powers the sensor, waits for a conversion, and returns a
    sample of the {!Platform.World} at the time the conversion finishes.
    Because the world varies with time, a re-executed read after a power
    failure can return a *different* value — the root cause of the
    paper's unsafe-program-execution problem (Fig. 2c). *)

open Platform

val temperature_dc : Machine.t -> int
(** Tenths of °C; ~900 µs conversion. Bumps ["io:Temp"]. *)

val humidity_pct : Machine.t -> int
(** Percent RH; ~700 µs. Bumps ["io:Humd"]. *)

val pressure_pa10 : Machine.t -> int
(** Tens of Pa; ~600 µs. Bumps ["io:Pres"]. *)

val light_lux : Machine.t -> int
(** Lux; ~400 µs. Bumps ["io:Light"]. *)
