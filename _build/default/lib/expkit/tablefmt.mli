(** Plain-text table formatting for the benchmark harness. *)

val rule : int list -> string
(** Horizontal rule matching column widths. *)

val row : int list -> string list -> string
(** [row widths cells] — left-aligned padded cells separated by two
    spaces. *)

val heading : string -> string
(** Banner for a table/figure section. *)

val ms : float -> string
val uj : float -> string
val f1 : float -> string
(** One-decimal float. *)

val pct : float -> string
