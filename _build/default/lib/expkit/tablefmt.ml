let pad w s =
  if String.length s >= w then s else s ^ String.make (w - String.length s) ' '

let row widths cells =
  String.concat "  " (List.map2 pad widths (List.map (fun c -> c) cells))

let rule widths = String.concat "  " (List.map (fun w -> String.make w '-') widths)

let heading title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.sprintf "\n%s\n| %s |\n%s" bar title bar

let ms v = Printf.sprintf "%.2fms" v
let uj v = Printf.sprintf "%.1fuJ" v
let f1 v = Printf.sprintf "%.1f" v
let pct v = Printf.sprintf "%.1f%%" v
