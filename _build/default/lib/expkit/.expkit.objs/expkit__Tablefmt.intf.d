lib/expkit/tablefmt.mli:
