lib/expkit/experiments.ml: Failure List Platform Printf Run Tablefmt
