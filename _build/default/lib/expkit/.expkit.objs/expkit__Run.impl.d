lib/expkit/run.ml: Kernel List
