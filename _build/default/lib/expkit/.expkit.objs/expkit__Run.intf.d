lib/expkit/run.mli: Kernel Machine Platform
