lib/expkit/tablefmt.ml: List Printf String
