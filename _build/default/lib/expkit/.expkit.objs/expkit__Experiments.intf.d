lib/expkit/experiments.mli: Failure Platform Run
