open Platform

let input_dim = 16
let classes = 4
let weight_seed = 77

(* stage dimensions: 16x16 -> conv4 -> 13x13 -> conv4 -> 10x10 -> fc -> 4 *)
let conv_k = 4
let dim1 = input_dim - conv_k + 1 (* 13 *)
let dim2 = dim1 - conv_k + 1 (* 10 *)
let fc_in = dim2 * dim2
let layer_count = 4

type t = {
  buffering : [ `Single | `Double ];
  image : int;  (** FRAM: the input frame *)
  buf_a : int;  (** FRAM activation buffer *)
  buf_b : int;  (** FRAM activation buffer (double buffering only) *)
  w_conv1 : int;
  w_conv2 : int;
  w_fc : int;
  result : int;
  scratch : Layers.scratch;
}

let flash m addr values =
  let fram = Machine.mem m Memory.Fram in
  Array.iteri (fun i v -> Memory.write fram (addr + i) v) values

let create m ~buffering =
  let alloc name words = Machine.alloc m Memory.Fram ~name:("dnn." ^ name) ~words in
  let act_words = input_dim * input_dim in
  let t =
    {
      buffering;
      image = alloc "image" act_words;
      buf_a = alloc "buf_a" act_words;
      buf_b =
        (match buffering with `Double -> alloc "buf_b" act_words | `Single -> -1);
      w_conv1 = alloc "w_conv1" (conv_k * conv_k);
      w_conv2 = alloc "w_conv2" (conv_k * conv_k);
      w_fc = alloc "w_fc" (fc_in * classes);
      result = alloc "result" 1;
      scratch =
        Layers.alloc_scratch m ~max_act:act_words ~max_weights:(fc_in * classes);
    }
  in
  flash m t.w_conv1 (Weights.gen ~seed:weight_seed (conv_k * conv_k));
  flash m t.w_conv2 (Weights.gen ~seed:(weight_seed + 1) (conv_k * conv_k));
  flash m t.w_fc (Weights.gen ~seed:(weight_seed + 2) (fc_in * classes));
  t

let image_loc t = Loc.fram t.image
let result_loc t = Loc.fram t.result
let result m t = Memory.read (Machine.mem m Memory.Fram) t.result

(* activation buffer for a stage: single buffering reuses buf_a in
   place; double buffering ping-pongs between buf_a and buf_b *)
let stage_bufs t i =
  match t.buffering with
  | `Single -> (Loc.fram t.buf_a, Loc.fram t.buf_a)
  | `Double ->
      if i mod 2 = 0 then (Loc.fram t.buf_a, Loc.fram t.buf_b)
      else (Loc.fram t.buf_b, Loc.fram t.buf_a)

let run_layer m mover t i =
  match i with
  | 0 ->
      (* conv1 reads the camera frame, writes the first stage buffer *)
      let _, out0 = stage_bufs t 0 in
      Layers.conv2d m mover t.scratch ~input:(Loc.fram t.image) ~weights:(Loc.fram t.w_conv1)
        ~output:(match t.buffering with `Single -> Loc.fram t.buf_a | `Double -> out0)
        ~in_dim:input_dim ~k:conv_k ~relu:true
  | 1 ->
      let inp, out = stage_bufs t 1 in
      Layers.conv2d m mover t.scratch
        ~input:(match t.buffering with `Single -> Loc.fram t.buf_a | `Double -> inp)
        ~weights:(Loc.fram t.w_conv2)
        ~output:(match t.buffering with `Single -> Loc.fram t.buf_a | `Double -> out)
        ~in_dim:dim1 ~k:conv_k ~relu:true
  | 2 ->
      let inp, out = stage_bufs t 2 in
      Layers.fully_connected m mover t.scratch
        ~input:(match t.buffering with `Single -> Loc.fram t.buf_a | `Double -> inp)
        ~weights:(Loc.fram t.w_fc)
        ~output:(match t.buffering with `Single -> Loc.fram t.buf_a | `Double -> out)
        ~in_len:fc_in ~out_len:classes
  | 3 ->
      let inp, _ = stage_bufs t 3 in
      let cls =
        Layers.argmax m mover t.scratch
          ~input:(match t.buffering with `Single -> Loc.fram t.buf_a | `Double -> inp)
          ~len:classes
      in
      Machine.write m Memory.Fram t.result cls
  | _ -> invalid_arg "Network.run_layer: stage out of range"

let reference_activations image =
  if Array.length image <> input_dim * input_dim then
    invalid_arg "Network.reference_activations: image size mismatch";
  let a1 =
    Layers.ref_conv2d ~input:image
      ~weights:(Weights.gen ~seed:weight_seed (conv_k * conv_k))
      ~in_dim:input_dim ~k:conv_k ~relu:true
  in
  let a2 =
    Layers.ref_conv2d ~input:a1
      ~weights:(Weights.gen ~seed:(weight_seed + 1) (conv_k * conv_k))
      ~in_dim:dim1 ~k:conv_k ~relu:true
  in
  let logits =
    Layers.ref_fully_connected ~input:a2
      ~weights:(Weights.gen ~seed:(weight_seed + 2) (fc_in * classes))
      ~out_len:classes
  in
  (a1, a2, logits)

let infer_reference image =
  let _, _, logits = reference_activations image in
  Layers.ref_argmax logits

let checksum a = Array.fold_left ( + ) 0 a land 0xFFFF

(* per-stage activation checksums, matching the weather app's post-store
   statistics pass *)
let reference_stats image =
  let a1, a2, logits = reference_activations image in
  [| checksum a1; checksum a2; checksum logits; Layers.ref_argmax logits land 0xFFFF |]

(* location and size of the activations stage [i] left in FRAM *)
let stage_output t i =
  let buf_of i =
    match t.buffering with
    | `Single -> t.buf_a
    | `Double -> if i mod 2 = 0 then t.buf_b else t.buf_a
  in
  match i with
  | 0 -> (Loc.fram (buf_of 0), dim1 * dim1)
  | 1 -> (Loc.fram (buf_of 1), dim2 * dim2)
  | 2 -> (Loc.fram (buf_of 2), classes)
  | 3 -> (Loc.fram t.result, 1)
  | _ -> invalid_arg "Network.stage_output"

let stored_image m t =
  let fram = Machine.mem m Memory.Fram in
  Array.init (input_dim * input_dim) (fun i -> Memory.read fram (t.image + i))
