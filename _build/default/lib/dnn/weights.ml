let gen ~seed n =
  Array.init n (fun i -> (Platform.Rng.hash2 seed i mod 513) - 256)
