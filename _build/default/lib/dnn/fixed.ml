let one = 256
let of_float f = int_of_float (Float.round (f *. float_of_int one))
let to_float q = float_of_int q /. float_of_int one
let mul q x = (q * x) asr 8
let relu x = if x < 0 then 0 else x
