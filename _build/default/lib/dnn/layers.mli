(** DNN layers executing on the accelerator substrate.

    Layers follow the TAILS pattern the paper cites: DMA-stage the input
    activations and weights from FRAM into volatile LEA-RAM, compute
    with LEA vector-MAC commands, DMA the result back to FRAM. The
    {!mover} abstracts who performs the transfers, so the same layer
    code runs under the baselines (raw DMA — unsafe under power
    failures) and under EaseIO (runtime-resolved [_DMA_copy] with
    privatization). *)

open Platform

type mover = {
  fetch : src:Loc.t -> leram_dst:int -> words:int -> unit;  (** FRAM → LEA-RAM *)
  store : leram_src:int -> dst:Loc.t -> words:int -> unit;  (** LEA-RAM → FRAM *)
}

val raw_mover : Machine.t -> mover
(** Plain DMA transfers (what Alpaca/InK applications do). *)

val easeio_mover : Easeio.Runtime.t -> mover
(** Transfers through [_DMA_copy]: fetches become Private (two-phase via
    the privatization buffer), stores become Single and are sealed by
    the next region/seal point. *)

type scratch
(** LEA-RAM working area shared by all layers of one network. *)

val alloc_scratch : Machine.t -> max_act:int -> max_weights:int -> scratch

val conv2d :
  Machine.t -> mover -> scratch ->
  input:Loc.t -> weights:Loc.t -> output:Loc.t ->
  in_dim:int -> k:int -> relu:bool -> unit
(** Valid 2-D convolution ([in_dim²] → [(in_dim-k+1)²]) with one Q8
    kernel, optional fused ReLU. *)

val fully_connected :
  Machine.t -> mover -> scratch ->
  input:Loc.t -> weights:Loc.t -> output:Loc.t ->
  in_len:int -> out_len:int -> unit

val argmax : Machine.t -> mover -> scratch -> input:Loc.t -> len:int -> int
(** Stage the logits and return the index of the maximum. *)

(** {1 Bit-exact references (pure OCaml, for correctness checks)} *)

val ref_conv2d : input:int array -> weights:int array -> in_dim:int -> k:int -> relu:bool -> int array
val ref_fully_connected : input:int array -> weights:int array -> out_len:int -> int array
val ref_argmax : int array -> int
