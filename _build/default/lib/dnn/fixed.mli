(** Q8 fixed-point arithmetic.

    The weather classifier runs integer-only inference, as DNNs on
    MSP430-class devices do (SONIC/TAILS): weights are signed Q8
    (value × 256), activations are plain integers, products are
    rescaled by [>> 8] after accumulation. *)

val one : int
(** The Q8 representation of 1.0 (256). *)

val of_float : float -> int
val to_float : int -> float

val mul : int -> int -> int
(** Q8 × integer → integer (product rescaled). *)

val relu : int -> int
