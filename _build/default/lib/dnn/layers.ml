open Platform

type mover = {
  fetch : src:Loc.t -> leram_dst:int -> words:int -> unit;
  store : leram_src:int -> dst:Loc.t -> words:int -> unit;
}

let raw_mover m =
  {
    fetch = (fun ~src ~leram_dst ~words -> Periph.Dma.copy m ~src ~dst:(Loc.sram leram_dst) ~words);
    store = (fun ~leram_src ~dst ~words -> Periph.Dma.copy m ~src:(Loc.sram leram_src) ~dst ~words);
  }

let easeio_mover rt =
  {
    fetch =
      (fun ~src ~leram_dst ~words ->
        Easeio.Runtime.dma_copy rt ~name:"fetch" ~src ~dst:(Loc.sram leram_dst) ~words);
    store =
      (fun ~leram_src ~dst ~words ->
        Easeio.Runtime.dma_copy rt ~name:"store" ~src:(Loc.sram leram_src) ~dst ~words);
  }

type scratch = { act_in : int; act_out : int; wts : int; win : int }

let alloc_scratch m ~max_act ~max_weights =
  {
    act_in = Periph.Lea.alloc_leram m ~name:"dnn.act_in" ~words:max_act;
    act_out = Periph.Lea.alloc_leram m ~name:"dnn.act_out" ~words:max_act;
    wts = Periph.Lea.alloc_leram m ~name:"dnn.weights" ~words:max_weights;
    win = Periph.Lea.alloc_leram m ~name:"dnn.window" ~words:32;
  }

(* gather a k x k window into a contiguous run so one LEA MAC computes
   the whole dot product; the movement is DMA-assisted (im2col), so it
   charges transfer costs rather than CPU loads *)
let gather_window m s ~base ~in_dim ~x ~y ~k =
  let c = Machine.cost m in
  Machine.charge_op m c.Cost.dma_word (k * k);
  let sram = Machine.mem m Memory.Sram in
  for r = 0 to k - 1 do
    for col = 0 to k - 1 do
      let v = Memory.read sram (base + ((y + r) * in_dim) + x + col) in
      Memory.write sram (s.win + (r * k) + col) v
    done
  done

let conv2d m mover s ~input ~weights ~output ~in_dim ~k ~relu =
  let out_dim = in_dim - k + 1 in
  if out_dim < 1 then invalid_arg "Layers.conv2d: kernel larger than input";
  mover.fetch ~src:input ~leram_dst:s.act_in ~words:(in_dim * in_dim);
  mover.fetch ~src:weights ~leram_dst:s.wts ~words:(k * k);
  for y = 0 to out_dim - 1 do
    for x = 0 to out_dim - 1 do
      gather_window m s ~base:s.act_in ~in_dim ~x ~y ~k;
      let acc = Periph.Lea.vector_mac ~shift:8 m ~a:s.win ~b:s.wts ~len:(k * k) in
      let acc = if relu then Fixed.relu acc else acc in
      Machine.write m Memory.Sram (s.act_out + (y * out_dim) + x) acc
    done
  done;
  mover.store ~leram_src:s.act_out ~dst:output ~words:(out_dim * out_dim)

let fully_connected m mover s ~input ~weights ~output ~in_len ~out_len =
  mover.fetch ~src:input ~leram_dst:s.act_in ~words:in_len;
  mover.fetch ~src:weights ~leram_dst:s.wts ~words:(in_len * out_len);
  for j = 0 to out_len - 1 do
    let acc = Periph.Lea.vector_mac ~shift:8 m ~a:s.act_in ~b:(s.wts + (j * in_len)) ~len:in_len in
    Machine.write m Memory.Sram (s.act_out + j) acc
  done;
  mover.store ~leram_src:s.act_out ~dst:output ~words:out_len

let argmax m mover s ~input ~len =
  mover.fetch ~src:input ~leram_dst:s.act_in ~words:len;
  Periph.Lea.vector_max m ~a:s.act_in ~len

(* {1 Bit-exact references} *)

let ref_conv2d ~input ~weights ~in_dim ~k ~relu =
  let out_dim = in_dim - k + 1 in
  Array.init (out_dim * out_dim) (fun idx ->
      let y = idx / out_dim and x = idx mod out_dim in
      let acc = ref 0 in
      for r = 0 to k - 1 do
        for c = 0 to k - 1 do
          acc := !acc + (input.(((y + r) * in_dim) + x + c) * weights.((r * k) + c))
        done
      done;
      let v = !acc asr 8 in
      if relu then Fixed.relu v else v)

let ref_fully_connected ~input ~weights ~out_len =
  let in_len = Array.length input in
  Array.init out_len (fun j ->
      let acc = ref 0 in
      for i = 0 to in_len - 1 do
        acc := !acc + (input.(i) * weights.((j * in_len) + i))
      done;
      !acc asr 8)

let ref_argmax a =
  let best = ref 0 in
  Array.iteri (fun i v -> if v > a.(!best) then best := i) a;
  !best
