(** The weather-classifier network (§5.4.1).

    Five stages over a 16×16 camera image, as in the paper: 4×4
    convolution, ReLU (fused), another 4×4 convolution, a fully
    connected layer, and an inference (argmax) stage. Activations live
    in FRAM between layers; each layer stages through LEA-RAM (see
    {!Layers}).

    Two buffering disciplines are provided for the Table 5 experiment:
    [`Double] keeps separate input/output activation buffers per layer
    (the defensive idiom the paper says programmers must use under
    Alpaca/InK), [`Single] reuses one buffer in place — which is only
    safe under EaseIO's regional privatization and Single-DMA
    handling. *)

open Platform

type t

val input_dim : int
(** 16 — the image is 16×16. *)

val classes : int
(** 4 weather classes. *)

val weight_seed : int

val create : Machine.t -> buffering:[ `Single | `Double ] -> t
(** Allocate FRAM buffers and LEA-RAM scratch; flash the weights
    (uncharged, link-time). *)

val image_loc : t -> Loc.t
(** Where the camera must deposit the frame. *)

val layer_count : int
(** Number of accelerator stages (conv1, conv2, fc, argmax) — each is
    run as its own task by the weather application. *)

val run_layer : Machine.t -> Layers.mover -> t -> int -> unit
(** [run_layer m mover net i] executes stage [i]; stage
    [layer_count - 1] (argmax) stores the class into the result slot. *)

val result_loc : t -> Loc.t
val result : Machine.t -> t -> int

val infer_reference : int array -> int
(** Bit-exact OCaml inference on a raw image (length [input_dim]²). *)

val reference_stats : int array -> int array
(** Per-stage activation checksums ([conv1; conv2; logits; class]) the
    weather app's statistics pass should observe on an uncorrupted
    run. *)

val stage_output : t -> int -> Loc.t * int
(** FRAM location and word count of stage [i]'s stored output (used by
    the weather app's post-store activation-statistics pass). *)

val stored_image : Machine.t -> t -> int array
(** Uncharged read-back of the captured frame. *)
