(** Deterministic pseudo-random Q8 weights.

    The paper's classifier ships trained coefficients; absolute accuracy
    is irrelevant to the systems evaluation (what matters is the data
    movement and compute pattern), so we generate reproducible weights
    from a seed and verify inference against a bit-exact OCaml
    reference. *)

val gen : seed:int -> int -> int array
(** [gen ~seed n] — [n] signed Q8 weights in [-256, 256], deterministic
    in [seed]. *)
