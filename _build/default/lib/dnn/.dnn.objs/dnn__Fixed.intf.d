lib/dnn/fixed.mli:
