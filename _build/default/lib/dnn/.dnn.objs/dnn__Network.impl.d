lib/dnn/network.ml: Array Layers Loc Machine Memory Platform Weights
