lib/dnn/layers.mli: Easeio Loc Machine Platform
