lib/dnn/fixed.ml: Float
