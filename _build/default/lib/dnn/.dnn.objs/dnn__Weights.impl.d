lib/dnn/weights.ml: Array Platform
