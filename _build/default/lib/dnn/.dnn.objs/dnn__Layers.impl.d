lib/dnn/layers.ml: Array Cost Easeio Fixed Loc Machine Memory Periph Platform
