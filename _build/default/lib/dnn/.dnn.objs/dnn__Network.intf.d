lib/dnn/network.mli: Layers Loc Machine Platform
