lib/dnn/weights.mli:
