(** Samoyed-style atomic peripheral functions (Maeng & Lucia, PLDI '19),
    the §2.2 comparison point.

    Samoyed wraps every peripheral operation in an *atomic function*: a
    just-in-time checkpoint is taken at the function's entry and
    checkpointing is disabled inside, so a power failure re-executes
    only the interrupted function, not the whole task. That yields the
    "Medium" wasted-I/O column of the paper's Table 1: better than
    task-granularity re-execution, but with no re-execution *semantics*
    (no Timely freshness, no Single result restoration for safe
    branching), no DMA WAR protection, and per-function checkpoint
    overhead.

    We model the checkpointed progress with a persistent step pointer:
    a task body is a sequence of steps; each step runs atomically
    (checkpoint at entry), and on reboot execution resumes at the
    interrupted step. Steps must communicate through non-volatile
    state, exactly like Samoyed's atomic functions. *)

open Platform

type t

val create : Machine.t -> t

val steps : t -> Machine.t -> task:string -> (Machine.t -> unit) list -> unit
(** [steps t m ~task fns] executes [fns] in order with a persistent
    step pointer keyed by [task]: after a power failure, completed
    steps are skipped and execution resumes at the interrupted one.
    Each step entry writes the pointer (the JIT checkpoint, charged as
    runtime overhead). The pointer resets when the enclosing task
    commits, so a fresh task instance runs all steps again. *)

val hooks : t -> Kernel.Engine.hooks
(** Resets step pointers at task commit. *)
