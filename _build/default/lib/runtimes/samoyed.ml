open Platform

type t = {
  m : Machine.t;
  pointers : (string, int) Hashtbl.t;  (** task -> FRAM step-pointer address *)
}

(* taking the JIT checkpoint at an atomic function's entry: registers +
   stack snapshot, a few dozen cycles on FRAM parts *)
let checkpoint_ops = 24

let create m = { m; pointers = Hashtbl.create 8 }

let pointer t task =
  match Hashtbl.find_opt t.pointers task with
  | Some addr -> addr
  | None ->
      let addr = Machine.alloc t.m Memory.Fram ~name:("rt.samoyed.step." ^ task) ~words:1 in
      Hashtbl.add t.pointers task addr;
      addr

let steps t m ~task fns =
  let ptr = pointer t task in
  List.iteri
    (fun i fn ->
      let resume =
        Machine.with_tag m Machine.Overhead (fun () -> Machine.read m Memory.Fram ptr)
      in
      if i >= resume then begin
        (* checkpoint at entry: a failure inside this step resumes here *)
        Machine.with_tag m Machine.Overhead (fun () ->
            Machine.cpu m checkpoint_ops;
            Machine.write m Memory.Fram ptr i);
        fn m;
        Machine.with_tag m Machine.Overhead (fun () -> Machine.write m Memory.Fram ptr (i + 1))
      end)
    fns

let hooks t =
  {
    Kernel.Engine.on_task_start = (fun _ _ -> ());
    on_commit =
      (fun m task ->
        match Hashtbl.find_opt t.pointers task with
        | Some ptr -> Machine.write m Memory.Fram ptr 0
        | None -> ());
    on_reboot = (fun _ -> ());
  }
