lib/runtimes/samoyed.ml: Hashtbl Kernel List Machine Memory Platform
