lib/runtimes/samoyed.mli: Kernel Machine Platform
