lib/runtimes/manager.mli: Kernel Loc Machine Platform
