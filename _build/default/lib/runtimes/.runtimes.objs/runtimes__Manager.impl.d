lib/runtimes/manager.ml: Cost Kernel List Loc Machine Memory Platform Printf
