open Platform

type transition = Next of string | Stop
type t = { name : string; body : Machine.t -> transition }

type app = {
  app_name : string;
  tasks : t list;
  entry : string;
  check : (Machine.t -> bool) option;
}

let find app name = List.find (fun t -> t.name = name) app.tasks

let make_app ?check ~name ~entry tasks =
  if tasks = [] then invalid_arg "Task.make_app: no tasks";
  let app = { app_name = name; tasks; entry; check } in
  (try ignore (find app entry)
   with Not_found -> invalid_arg ("Task.make_app: unknown entry task " ^ entry));
  app

let index_of app name =
  let rec go i = function
    | [] -> raise Not_found
    | t :: rest -> if t.name = name then i else go (i + 1) rest
  in
  go 0 app.tasks

let task_of_index app i = List.nth app.tasks i
let task_count app = List.length app.tasks
