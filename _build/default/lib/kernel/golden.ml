open Platform

let is_io (name, _) = String.length name > 3 && String.sub name 0 3 = "io:"
let io_executions m = List.filter is_io (Machine.events m)
let total_io m = List.fold_left (fun acc (_, n) -> acc + n) 0 (io_executions m)

let redundant_io ~golden ~test =
  List.fold_left
    (fun acc (name, n) -> acc + max 0 (n - Machine.event golden name))
    0 (io_executions test)

let ranges_equal ~a ~b (loc : Loc.t) ~words =
  let ma = Machine.mem a loc.space and mb = Machine.mem b loc.space in
  let rec go i = i >= words || (Memory.read ma (loc.addr + i) = Memory.read mb (loc.addr + i) && go (i + 1)) in
  go 0
