lib/kernel/metrics.ml: Format Machine Platform Units
