lib/kernel/task.ml: List Machine Platform
