lib/kernel/engine.mli: Machine Metrics Platform Task
