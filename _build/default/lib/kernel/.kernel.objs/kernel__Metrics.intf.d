lib/kernel/metrics.mli: Format Machine Platform
