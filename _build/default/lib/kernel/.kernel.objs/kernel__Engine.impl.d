lib/kernel/engine.ml: Machine Memory Metrics Option Platform Task
