lib/kernel/task.mli: Machine Platform
