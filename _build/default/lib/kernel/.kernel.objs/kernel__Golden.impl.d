lib/kernel/golden.ml: List Loc Machine Memory Platform String
