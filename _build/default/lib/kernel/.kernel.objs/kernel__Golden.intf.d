lib/kernel/golden.mli: Loc Machine Platform
