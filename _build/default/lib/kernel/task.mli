(** Task-based application model.

    An application is a set of atomic tasks. A task body runs to
    completion and names its successor; a power failure anywhere inside
    the body causes the whole body to re-execute on the next boot
    (all-or-nothing semantics). Task-local OCaml bindings model volatile
    registers/stack: they vanish naturally when the body re-runs.
    Persistent state must live in the machine's FRAM. *)

open Platform

type transition =
  | Next of string  (** continue with the named task *)
  | Stop  (** application complete *)

type t = {
  name : string;
  body : Machine.t -> transition;
}

type app = {
  app_name : string;
  tasks : t list;
  entry : string;  (** name of the first task *)
  check : (Machine.t -> bool) option;
      (** post-run correctness predicate (compares outputs against an
          independently computed reference); [None] = not checkable *)
}

val make_app : ?check:(Machine.t -> bool) -> name:string -> entry:string -> t list -> app
(** Validates that [entry] and every [Next] target can resolve. *)

val find : app -> string -> t
(** Raises [Not_found] on unknown task names. *)

val index_of : app -> string -> int
val task_of_index : app -> int -> t
val task_count : app -> int
