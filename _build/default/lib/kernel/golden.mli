(** Reference (continuous-power) runs and comparison helpers.

    Correctness experiments (Fig. 12, Table 5) compare an intermittent
    run's outputs against a golden run under continuous power, and the
    "redundant I/O" metric (Table 4) is the difference between the I/O
    executions an intermittent run performed and the number a
    continuous-power run needs. *)

open Platform

val io_executions : Machine.t -> (string * int) list
(** Event counters whose name starts with ["io:"] — one entry per
    peripheral operation kind, value = number of executions. *)

val total_io : Machine.t -> int

val redundant_io : golden:Machine.t -> test:Machine.t -> int
(** Executions performed by [test] beyond what [golden] needed, summed
    over operation kinds (never negative per kind). *)

val ranges_equal : a:Machine.t -> b:Machine.t -> Loc.t -> words:int -> bool
(** Word-for-word comparison of the same location in two machines. *)
