lib/apps/weather.mli: Common Expkit Failure Kernel Machine Periph Platform
