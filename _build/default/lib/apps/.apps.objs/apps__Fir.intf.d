lib/apps/fir.mli: Common Expkit Platform
