lib/apps/common.mli: Expkit Failure Lang Loc Machine Platform
