lib/apps/uni.mli: Common Expkit Platform
