lib/apps/catalog.mli: Common
