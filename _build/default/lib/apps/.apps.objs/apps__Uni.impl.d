lib/apps/uni.ml: Array Common Lang List Printf
