lib/apps/common.ml: Array Expkit Failure Lang Loc Machine Memory Periph Platform
