lib/apps/fir.ml: Array Common Lang Printf
