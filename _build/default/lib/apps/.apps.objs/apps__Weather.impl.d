lib/apps/weather.ml: Array Common Dnn Easeio Engine Expkit Kernel List Loc Machine Memory Periph Platform Runtimes Task
