lib/apps/catalog.ml: Common Fir List Uni Weather
