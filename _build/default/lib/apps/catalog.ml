let all = [ Uni.lea; Uni.dma; Uni.temp; Fir.spec; Weather.spec ]
let uni_task = [ Uni.dma; Uni.temp; Uni.lea ]
let find name = List.find (fun s -> s.Common.app_name = name) all
