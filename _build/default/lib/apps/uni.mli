(** Phase-1 uni-task applications (§5.3): one I/O kind each.

    - [dma] — three tasks, each performing one large NVM→NVM block copy
      (Single re-execution semantics);
    - [temp] — temperature sensing with a 10 ms freshness window
      (Timely), followed by compute tasks;
    - [lea] — vector MACs on the accelerator (Always: LEA operands are
      volatile and must be re-staged after every reboot).

    All three are written in the task language and run under any
    runtime variant; each has a built-in output-correctness check. *)

val dma : Common.spec
val temp : Common.spec
val lea : Common.spec

val dma_run_ablated :
  ablate_semantics:bool ->
  failure:Platform.Failure.spec ->
  seed:int ->
  Expkit.Run.one
(** The DMA application under EaseIO with the re-execution semantics
    optionally disabled (ablation benches). *)

val dma_source : string
val temp_source : string
val lea_source : string
(** The .eio sources (exposed for the compiler-explorer example). *)
