(** Pretty-printer for task-language programs.

    Prints transformed programs in a C-like concrete syntax mirroring
    the paper's Fig. 5/Fig. 6 listings, so the effect of the compiler
    front-end can be inspected (and round-tripped through the parser for
    untransformed programs). *)

val expr_to_string : Ast.expr -> string
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
