lib/lang/footprint.mli: Format Interp
