lib/lang/parser.ml: Array Ast Easeio Lexer List Printf
