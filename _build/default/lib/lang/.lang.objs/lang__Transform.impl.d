lib/lang/transform.ml: Analysis Ast Easeio Hashtbl List Option Printf String
