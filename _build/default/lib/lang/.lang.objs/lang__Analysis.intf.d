lib/lang/analysis.mli: Ast Set
