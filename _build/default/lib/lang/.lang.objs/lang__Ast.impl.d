lib/lang/ast.ml: Easeio Hashtbl List Option Printf
