lib/lang/analysis.ml: Ast Easeio List Set String
