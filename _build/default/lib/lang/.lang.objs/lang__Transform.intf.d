lib/lang/transform.mli: Ast
