lib/lang/interp.mli: Ast Kernel Loc Machine Periph Platform Transform
