lib/lang/footprint.ml: Ast Format Interp Layout List Machine Memory Platform
