lib/lang/interp.ml: Analysis Array Ast Easeio Hashtbl Kernel List Loc Machine Memory Option Periph Platform Runtimes String Timekeeper Transform
