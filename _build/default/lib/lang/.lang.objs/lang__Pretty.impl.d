lib/lang/pretty.ml: Array Ast Easeio Format List Printf String
