open Ast
module SS = Set.Make (String)

let is_nv p name =
  match find_global p name with Some d -> d.v_space = Nv | None -> false

let nv_cpu_accesses p stmts =
  let reads = ref SS.empty and writes = ref SS.empty in
  let add_reads e =
    List.iter (fun v -> if is_nv p v then reads := SS.add v !reads) (expr_reads e [])
  in
  let add_write v = if is_nv p v then writes := SS.add v !writes in
  iter_stmts
    (fun s ->
      match s with
      | Assign (v, e) ->
          add_write v;
          add_reads e
      | Store (a, i, e) ->
          add_write a;
          add_reads i;
          add_reads e
      | If (c, _, _) | While (c, _) -> add_reads c
      | For (v, lo, hi, _) ->
          add_write v;
          add_reads lo;
          add_reads hi
      | Call_io { args; _ } ->
          (* scalar args are CPU reads; array args go to the peripheral *)
          List.iter (function Aexpr e -> add_reads e | Aarr _ -> ()) args
      | Dma { dma_words; dma_src; dma_dst; _ } ->
          (* only the transfer size and offsets are CPU-evaluated *)
          add_reads dma_words;
          add_reads dma_src.ref_off;
          add_reads dma_dst.ref_off
      | Memcpy { cp_words; _ } -> add_reads cp_words
      | Io_block _ | Seal_dmas | Next _ | Stop -> ())
    stmts;
  (!reads, !writes)

let war_vars p task =
  let reads, writes = nv_cpu_accesses p task.t_body in
  let war = SS.inter reads writes in
  List.filter_map
    (fun d -> if SS.mem d.v_name war then Some d.v_name else None)
    p.p_globals

let split_regions task =
  let rec go current acc = function
    | [] -> List.rev ((List.rev current, None) :: acc)
    | Dma d :: rest -> go [] ((List.rev current, Some d) :: acc) rest
    | s :: rest -> go (s :: current) acc rest
  in
  go [] [] task.t_body

(* [`No_loop] — not inside a loop; [`Static] — inside one statically
   bounded [for] (annotated I/O is supported via loop-indexed lock
   arrays, §6); [`Dynamic] — inside [while], a dynamically bounded
   [for], or nested loops. *)
let check_supported p =
  let rec walk ~loop ~nested t = function
    | Call_io { sem; io; _ } when loop = `Dynamic && sem <> Easeio.Semantics.Always ->
        error
          "task %s: %s-annotated call_io(%s) inside a dynamically bounded or nested loop is \
           unsupported; use a statically bounded for loop or unroll it"
          t (Easeio.Semantics.to_string sem) io
    | Io_block _ when loop <> `No_loop -> error "task %s: io_block inside a loop is unsupported" t
    | Dma _ ->
        if loop <> `No_loop || nested then
          error "task %s: _DMA_copy must be a top-level task statement (regions)" t
    | If (_, a, b) ->
        List.iter (walk ~loop ~nested:true t) a;
        List.iter (walk ~loop ~nested:true t) b
    | While (_, b) -> List.iter (walk ~loop:`Dynamic ~nested:true t) b
    | For (_, lo, hi, b) ->
        let inner =
          match (loop, lo, hi) with
          | `No_loop, Int _, Int _ -> `Static
          | _ -> `Dynamic
        in
        List.iter (walk ~loop:inner ~nested:true t) b
    | Io_block { blk_body; _ } -> List.iter (walk ~loop ~nested:true t) blk_body
    | Assign _ | Store _ | Call_io _ | Memcpy _ | Seal_dmas | Next _ | Stop -> ()
  in
  List.iter (fun task -> List.iter (walk ~loop:`No_loop ~nested:false task.t_name) task.t_body)
    p.p_tasks
