open Platform

type t = {
  text_bytes : int;
  ram_bytes : int;
  fram_app_bytes : int;
  fram_runtime_bytes : int;
}

let fram_total t = t.fram_app_bytes + t.fram_runtime_bytes

(* Fixed code footprint of each runtime's library: boot/commit plumbing
   for Alpaca, the reactive kernel for InK, the EaseIO runtime library
   (semantics checks + DMA handling + regional privatization, ~1 KB over
   Alpaca per the paper's Table 6 discussion). *)
type lang_policy = Lang_policy_alpaca | Lang_policy_ink | Lang_policy_other

let library_text = function
  | Lang_policy_alpaca -> 700
  | Lang_policy_ink -> 2400
  | Lang_policy_other -> 1600

let stmt_bytes = 10 (* a statement averages a few 4-byte MSP430 instructions *)

let count_stmts prog =
  let n = ref 0 in
  List.iter
    (fun (t : Ast.task) -> Ast.iter_stmts (fun _ -> incr n) t.Ast.t_body)
    prog.Ast.p_tasks;
  !n

let measure interp =
  let m = Interp.machine interp in
  let prog = Interp.program interp in
  let fram = Machine.layout m Memory.Fram and sram = Machine.layout m Memory.Sram in
  let words_to_bytes w = 2 * w in
  let runtime_words =
    Layout.used_matching fram ~prefix:"__"
    + Layout.used_matching fram ~prefix:"rt."
    + Layout.used_matching fram ~prefix:"easeio."
    + Layout.used_matching fram ~prefix:"kernel."
  in
  let policy_lib =
    match Interp.transformed interp with
    | Some _ -> library_text Lang_policy_other
    | None ->
        (* distinguish baselines by allocated metadata prefixes *)
        if Layout.used_matching fram ~prefix:"rt.ink." > 0 then library_text Lang_policy_ink
        else if Layout.used_matching fram ~prefix:"rt.alpaca." > 0 then
          library_text Lang_policy_alpaca
        else library_text Lang_policy_alpaca
  in
  {
    text_bytes = policy_lib + (stmt_bytes * count_stmts prog);
    ram_bytes = words_to_bytes (Layout.used sram);
    fram_app_bytes = words_to_bytes (Layout.used fram - runtime_words);
    fram_runtime_bytes = words_to_bytes runtime_words;
  }

let pp ppf t =
  Format.fprintf ppf ".text=%dB ram=%dB fram=%dB (runtime %dB)" t.text_bytes t.ram_bytes
    (fram_total t) t.fram_runtime_bytes
