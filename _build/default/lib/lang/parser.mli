(** Recursive-descent parser for the task language.

    Concrete syntax example:
    {v
    program weather;

    nv int input[64];
    nv int coefs[8] = {1, 2, 3, 4, 4, 3, 2, 1};
    vol int lebuf[72];
    nv int stdy;

    task sense {
      int temp;
      io_block(Single) {
        temp = call_io(Temp, Timely, 10ms);
        call_io(Humd, Always);
      }
      if (temp < 100) { stdy = 1; }
      dma_copy(input[0], lebuf[0], 64);
      next filter;
    }

    task filter { stop; }
    v}

    The first task is the entry point. [int x, y;] declares volatile
    task locals (semantically implicit — any non-global scalar is a
    local). Integer literals accept [ms]/[us] suffixes and are
    normalized to microseconds. *)

exception Error of string
(** Parse error with a line number. *)

val program : string -> Ast.program
(** Parse and validate a complete program from source text. *)

val expr : string -> Ast.expr
(** Parse a single expression (for tests). *)
