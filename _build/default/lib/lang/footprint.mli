(** Memory and code-size accounting (Table 6).

    FRAM/RAM figures come from the machine's layout allocators after a
    program is built for a given policy (so they include the runtime's
    flags, private copies, double buffers and privatization buffers).
    The [.text] estimate models code size as a per-statement encoding
    (MSP430 instructions average ~4 bytes; a statement compiles to a
    handful of instructions) plus a fixed runtime-library footprint per
    policy, calibrated to the magnitudes reported by the paper. *)

type t = {
  text_bytes : int;
  ram_bytes : int;
  fram_app_bytes : int;  (** application data *)
  fram_runtime_bytes : int;  (** runtime metadata: flags, copies, buffers *)
}

val fram_total : t -> int

val measure : Interp.t -> t
(** Footprint of a built program (call after {!Interp.build}). *)

val pp : Format.formatter -> t -> unit
