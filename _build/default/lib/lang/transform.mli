(** The EaseIO compiler front-end (§4 of the paper).

    A source-to-source pass over the task language that compiles the
    programmer's I/O annotations into explicit guard code and runtime
    state, exactly as the paper's Clang/LibTooling tool does (Fig. 5):

    - every [Single]/[Timely] [_call_IO] site gets a non-volatile lock
      flag [__lock_<fn>_<task>_<n>], a timestamp [__time_…] (Timely
      only) and a private result copy [__priv_…]; the call is wrapped in
      an [if] whose condition checks the flag, staleness, enclosing
      block violations, and data dependences; the original target
      variable is assigned from the private copy afterwards, so skipped
      re-executions restore the previous result;
    - every [_IO_block] gets a block flag and timestamp; a violated
      block forces every inner operation to re-execute, a completed
      valid block skips its whole body and restores inner results
      (scope precedence, §3.3.1);
    - data dependences between I/O operations (§3.3.2) are compiled to
      volatile per-cycle execution markers [__exec_…] that force
      dependent operations (and [_DMA_copy]s, §4.3.1) to re-execute when
      a producer ran in the current energy cycle;
    - each task is split into regions at its [_DMA_copy] statements and
      {b regional privatization} code is inserted at each region head
      (§4.4, Fig. 6): snapshot the region's CPU-accessed NV variables on
      first entry, restore them on re-execution; pending DMA completion
      flags are sealed right after the region guard, making DMA
      completion atomic with the privatization;
    - as a compile-time service ([§6] future work in the paper), the
      pass sums the worst-case privatization-buffer demand of
      NV→volatile transfers and reports an error when it exceeds the
      configured buffer.

    The transformed program contains only plain statements plus the
    [Dma] (runtime-resolved) and [Seal_dmas] primitives; all inserted
    variables are prefixed with ["__"] so the footprint accounting can
    attribute them to the runtime. *)

type result = {
  prog : Ast.program;  (** the transformed program *)
  clear_flags : (string * string list) list;
      (** per task: NV lock/region flags the runtime clears at commit *)
  priv_demand_words : int;
      (** worst-case privatization-buffer demand of NV→volatile DMAs *)
}

val apply :
  ?ablate_regions:bool ->
  ?ablate_semantics:bool ->
  ?priv_buffer_words:int ->
  Ast.program ->
  result
(** Transform a program. Raises {!Ast.Error} on unsupported constructs
    or when the static privatization demand exceeds
    [priv_buffer_words] (default 2048 words — the paper's 4 KB).

    The ablation knobs support the DESIGN.md §6 experiments:
    [ablate_regions] removes regional privatization (Single DMAs seal
    immediately after the copy, so skipped transfers leave
    WAR-inconsistent state behind); [ablate_semantics] rewrites every
    annotation to Always and marks every DMA Exclude, keeping the
    transform's costs but none of its savings. *)
