open Ast
module SS = Analysis.SS

type result = {
  prog : program;
  clear_flags : (string * string list) list;
  priv_demand_words : int;
}

type env = {
  prog : program;
  task : string;
  mutable counter : int;  (** per-task call-site counter *)
  mutable new_globals : var_decl list;
  mutable flags : string list;  (** NV flags cleared at task commit *)
  taint : (string, SS.t) Hashtbl.t;
      (** variable/array -> volatile execution markers of the I/O sites
          whose data it carries *)
  mutable priv_demand : int;
}

let nv_scalar env name =
  env.new_globals <- { v_name = name; v_space = Nv; v_words = 1; v_init = None } :: env.new_globals;
  name

let nv_array env name words =
  env.new_globals <-
    { v_name = name; v_space = Nv; v_words = words; v_init = None } :: env.new_globals;
  name

let flag env name =
  env.flags <- name :: env.flags;
  nv_scalar env name

let taint_of env e =
  List.fold_left
    (fun acc v ->
      match Hashtbl.find_opt env.taint v with Some s -> SS.union s acc | None -> acc)
    SS.empty (expr_reads e [])

let add_taint env var set =
  if SS.is_empty set then Hashtbl.remove env.taint var else Hashtbl.replace env.taint var set

let or_all = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc e -> Binop (Or, acc, e)) e rest)

let dep_exprs deps = List.map (fun d -> Binop (Eq, Var d, Int 1)) (SS.elements deps)

(* Guard condition for one I/O site: flag unset, OR stale, OR a block
   violation in scope, OR a producer re-executed this cycle. [lock_e]
   and [time_e] are expressions so that loop-indexed sites (lock-flag
   arrays, §6) use the same logic. *)
let guard_expr ~lock_e ~time_e ~(sem : Easeio.Semantics.t) ~force ~deps =
  let base = Binop (Eq, lock_e, Int 0) in
  let stale =
    match sem with
    | Timely d -> [ Binop (Gt, Binop (Sub, Get_time, time_e), Int d) ]
    | Single | Always -> []
  in
  let force = match force with Some f -> [ f ] | None -> [] in
  List.fold_left (fun acc e -> Binop (Or, acc, e)) base (stale @ force @ dep_exprs deps)

let rec transform_stmts ?loop env ~force stmts =
  List.concat_map (transform_stmt ?loop env ~force) stmts

and transform_stmt ?loop env ~force stmt =
  match stmt with
  | Assign (v, e) ->
      add_taint env v (taint_of env e);
      [ stmt ]
  | Store (a, _, e) ->
      let prev = Option.value ~default:SS.empty (Hashtbl.find_opt env.taint a) in
      add_taint env a (SS.union prev (taint_of env e));
      [ stmt ]
  | If (c, a, b) ->
      [ If (c, transform_stmts ?loop env ~force a, transform_stmts ?loop env ~force b) ]
  | While (c, b) -> [ While (c, transform_stmts env ~force b) ]
  | For (v, lo, hi, b) -> (
      (* statically bounded loops carry a loop context so annotated I/O
         inside them gets per-iteration lock-flag arrays (§6) *)
      match (loop, lo, hi) with
      | None, Int l, Int h when h >= l ->
          [ For (v, lo, hi, transform_stmts ~loop:(v, l, h) env ~force b) ]
      | _ -> [ For (v, lo, hi, transform_stmts env ~force b) ])
  | Call_io c -> transform_call ?loop env ~force c
  | Io_block { blk_sem; blk_body } -> transform_block env ~force blk_sem blk_body
  | Dma d -> transform_dma env d
  | Memcpy _ | Seal_dmas -> [ stmt ]
  | Next _ | Stop -> [ stmt ]

and transform_call ?loop env ~force c =
  let n = env.counter in
  env.counter <- n + 1;
  let site = Printf.sprintf "%s_%s_%d" c.io env.task n in
  let execl = "__exec_" ^ site in
  let deps =
    List.fold_left
      (fun acc -> function Aexpr e -> SS.union acc (taint_of env e) | Aarr a -> (
           match Hashtbl.find_opt env.taint a with Some s -> SS.union acc s | None -> acc))
      SS.empty c.args
  in
  let result_local = "__t_" ^ site in
  (* per-iteration state for loop-indexed sites: slots become arrays of
     the loop's trip count, indexed by the (normalized) loop variable *)
  let trip = match loop with Some (_, l, h) -> h - l + 1 | None -> 1 in
  let idx = match loop with Some (v, l, _) -> Some (Binop (Sub, Var v, Int l)) | None -> None in
  let slot name =
    match idx with
    | None -> ((fun n -> Var n), (fun n e -> Assign (n, e)), nv_scalar env name)
    | Some i -> ((fun n -> Index (n, i)), (fun n e -> Store (n, i, e)), nv_array env name trip)
  in
  let privv =
    match c.target with Some _ -> Some (slot ("__priv_" ^ site)) | None -> None
  in
  let exec_seq =
    [ Call_io { c with target = Option.map (fun _ -> result_local) c.target; guarded = true } ]
    @ (match privv with Some (_, pw, p) -> [ pw p (Var result_local) ] | None -> [])
    @ [ Assign (execl, Int 1) ]
  in
  let restore =
    match (c.target, privv) with
    | Some tgt, Some (pr, _, p) -> [ Assign (tgt, pr p) ]
    | _ -> []
  in
  (match c.target with
  | Some tgt -> add_taint env tgt (SS.singleton execl)
  | None -> ());
  match c.sem with
  | Always ->
      (* no lock: the operation re-executes after every reboot; the
         private copy still exists so enclosing completed blocks can
         restore the result *)
      exec_seq @ restore
  | Single | Timely _ ->
      let lr, lw, lock = slot ("__lock_" ^ site) in
      env.flags <- lock :: env.flags;
      let tslot =
        match c.sem with Timely _ -> Some (slot ("__time_" ^ site)) | _ -> None
      in
      let time_e = match tslot with Some (tr, _, tv) -> tr tv | None -> Int 0 in
      let exec_seq =
        exec_seq
        @ (match tslot with Some (_, tw, tv) -> [ tw tv Get_time ] | None -> [])
        @ [ lw lock (Int 1) ]
      in
      [ If (guard_expr ~lock_e:(lr lock) ~time_e ~sem:c.sem ~force ~deps, exec_seq, []) ]
      @ restore

and transform_block env ~force sem body =
  let n = env.counter in
  env.counter <- n + 1;
  let site = Printf.sprintf "block_%s_%d" env.task n in
  let lock = flag env ("__lock_" ^ site) in
  let time =
    match sem with Easeio.Semantics.Timely _ -> nv_scalar env ("__time_" ^ site) | _ -> "__unused"
  in
  let violl = "__viol_" ^ site in
  let viol_expr =
    match (sem : Easeio.Semantics.t) with
    | Timely d ->
        Binop (And, Binop (Eq, Var lock, Int 1), Binop (Gt, Binop (Sub, Get_time, Var time), Int d))
    | Always -> Binop (Eq, Var lock, Int 1)
    | Single -> Int 0
  in
  let inner_force =
    or_all ((match force with Some f -> [ f ] | None -> []) @ [ Binop (Eq, Var violl, Int 1) ])
  in
  (* collect restores for results produced inside the block so that a
     skipped block still delivers the stored values (Fig. 5: pres =
     pres_priv after the block's if) *)
  let restores = ref [] in
  let rec collect = function
    | Call_io { target = Some tgt; io; _ } -> restores := (tgt, io) :: !restores
    | Io_block { blk_body; _ } -> List.iter collect blk_body
    | If (_, a, b) ->
        List.iter collect a;
        List.iter collect b
    | While (_, b) | For (_, _, _, b) -> List.iter collect b
    | _ -> ()
  in
  List.iter collect body;
  let saved_counter = env.counter in
  ignore saved_counter;
  let body' = transform_stmts env ~force:inner_force body in
  let enter =
    let base = Binop (Or, Binop (Eq, Var lock, Int 0), Binop (Eq, Var violl, Int 1)) in
    match force with Some f -> Binop (Or, base, f) | None -> base
  in
  let complete =
    (match sem with Easeio.Semantics.Timely _ -> [ Assign (time, Get_time) ] | _ -> [])
    @ [ Assign (lock, Int 1) ]
  in
  (* restores after the block: for each target, its __priv copy — we
     need the priv names, which transform_call derived; recompute by
     scanning the transformed body for the pattern Assign(tgt, Var p) *)
  let post_restores =
    let rec find acc = function
      | Assign (tgt, Var p) when String.length p > 7 && String.sub p 0 7 = "__priv_" ->
          (tgt, p) :: acc
      | If (_, a, b) -> List.fold_left find (List.fold_left find acc a) b
      | _ -> acc
    in
    let pairs = List.fold_left find [] body' in
    List.rev_map (fun (tgt, p) -> Assign (tgt, Var p)) pairs
  in
  [ Assign (violl, viol_expr); If (enter, body' @ complete, []) ] @ post_restores

and transform_dma env d =
  let n = env.counter in
  env.counter <- n + 1;
  (* dependences: markers carried by the source array or offset exprs *)
  let src_taint =
    SS.union
      (Option.value ~default:SS.empty (Hashtbl.find_opt env.taint d.dma_src.ref_arr))
      (taint_of env d.dma_src.ref_off)
  in
  (* the destination now carries whatever the source carried *)
  let prev = Option.value ~default:SS.empty (Hashtbl.find_opt env.taint d.dma_dst.ref_arr) in
  add_taint env d.dma_dst.ref_arr (SS.union prev src_taint);
  (* static privatization-buffer demand (§6): NV -> volatile transfers
     of a statically-known size *)
  (if not d.exclude then
     let src_nv =
       match find_global env.prog d.dma_src.ref_arr with
       | Some g -> g.v_space = Nv
       | None -> false
     in
     let dst_nv =
       match find_global env.prog d.dma_dst.ref_arr with
       | Some g -> g.v_space = Nv
       | None -> false
     in
     if src_nv && not dst_nv then
       match d.dma_words with
       | Int w -> env.priv_demand <- env.priv_demand + w
       | _ -> ());
  [ Dma { d with dma_deps = SS.elements src_taint } ]

(* Regional privatization (§4.4): privatize the region's CPU-accessed NV
   variables at its head; seal the completion flags of the DMAs that
   precede it right after the guard. *)
let region_guard env ~k ~vars ~seal =
  let rflag = flag env (Printf.sprintf "__region_%s_%d" env.task k) in
  let save, recover =
    List.fold_left
      (fun (save, recover) v ->
        let decl = Option.get (find_global env.prog v) in
        let priv = nv_array env (Printf.sprintf "__rp_%s_%d_%s" env.task k v) decl.v_words in
        let cp dst src =
          Memcpy
            {
              cp_dst = { ref_arr = dst; ref_off = Int 0 };
              cp_src = { ref_arr = src; ref_off = Int 0 };
              cp_words = Int decl.v_words;
            }
        in
        (cp priv v :: save, cp v priv :: recover))
      ([], []) vars
  in
  let guard =
    if vars = [] then []
    else
      [
        If
          ( Binop (Eq, Var rflag, Int 0),
            List.rev (Assign (rflag, Int 1) :: save),
            List.rev recover );
      ]
  in
  guard @ if seal then [ Seal_dmas ] else []

let transform_task ?(ablate_regions = false) env (t : task) =
  let regions = Analysis.split_regions t in
  (* Tracks arrays already covered by an earlier region's snapshot: when
     such a region's recovery rolls one of them back while a completed
     (skipped) Single DMA had written it, the region *after* the DMA
     must also snapshot the destination so that its recovery
     re-establishes the transfer's effect (Fig. 6 caption: the DMA is
     complete only when the following privatization ends). Destinations
     never touched by earlier regions need no snapshot — nothing can
     roll them back. *)
  let snapshotted = ref SS.empty in
  let prev_dma = ref None in
  let body =
    List.concat
      (List.mapi
         (fun k (stmts, dma) ->
           let reads, writes = Analysis.nv_cpu_accesses env.prog stmts in
           let dma_dst =
             match !prev_dma with
             | Some prev when not prev.exclude && SS.mem prev.dma_dst.ref_arr !snapshotted
               -> (
                 match find_global env.prog prev.dma_dst.ref_arr with
                 | Some g when g.v_space = Nv -> SS.singleton prev.dma_dst.ref_arr
                 | Some _ | None -> SS.empty)
             | Some _ | None -> SS.empty
           in
           let accessed = SS.union dma_dst (SS.union reads writes) in
           let vars =
             List.filter_map
               (fun d -> if SS.mem d.v_name accessed then Some d.v_name else None)
               env.prog.p_globals
           in
           snapshotted := SS.union !snapshotted accessed;
           prev_dma := dma;
           (* a single-region task (no DMA) still gets privatization so
              its CPU writes are idempotent across re-executions *)
           let head =
             if ablate_regions then []
             else region_guard env ~k ~vars ~seal:(k > 0)
           in
           let mid = transform_stmts env ~force:None stmts in
           let tail =
             match dma with
             | Some d ->
                 (* ablated: seal immediately after the copy — skipped
                    transfers are then unprotected by any snapshot *)
                 transform_dma env d @ (if ablate_regions then [ Seal_dmas ] else [])
             | None -> []
           in
           head @ mid @ tail)
         regions)
  in
  { t with t_body = body }

(* Ablation knobs (DESIGN.md §6): [ablate_regions] drops regional
   privatization (Single DMAs are sealed immediately after the copy) —
   skipped DMAs then leave WAR-inconsistent memory behind, demonstrating
   why §4.4 is necessary. [ablate_semantics] rewrites every annotation
   to Always and excludes every DMA — EaseIO's machinery with none of
   its savings, isolating the cost of the transform itself. *)
let force_always p =
  let rec stmt = function
    | Call_io c -> Call_io { c with sem = Easeio.Semantics.Always }
    | Io_block b ->
        Io_block { blk_sem = Easeio.Semantics.Always; blk_body = List.map stmt b.blk_body }
    | Dma d -> Dma { d with exclude = true }
    | If (e, a, b) -> If (e, List.map stmt a, List.map stmt b)
    | While (e, b) -> While (e, List.map stmt b)
    | For (v, lo, hi, b) -> For (v, lo, hi, List.map stmt b)
    | (Assign _ | Store _ | Memcpy _ | Seal_dmas | Next _ | Stop) as s -> s
  in
  { p with p_tasks = List.map (fun t -> { t with t_body = List.map stmt t.t_body }) p.p_tasks }

let apply ?(ablate_regions = false) ?(ablate_semantics = false) ?(priv_buffer_words = 2048) p =
  let p = if ablate_semantics then force_always p else p in
  Analysis.check_supported p;
  let new_globals = ref [] and clear = ref [] in
  let total_demand = ref 0 in
  let tasks =
    List.map
      (fun t ->
        let env =
          {
            prog = p;
            task = t.t_name;
            counter = 0;
            new_globals = [];
            flags = [];
            taint = Hashtbl.create 16;
            priv_demand = 0;
          }
        in
        let t' = transform_task ~ablate_regions env t in
        new_globals := !new_globals @ List.rev env.new_globals;
        clear := (t.t_name, List.rev env.flags) :: !clear;
        total_demand := !total_demand + env.priv_demand;
        t')
      p.p_tasks
  in
  if !total_demand > priv_buffer_words then
    error
      "privatization buffer overflow: NV->volatile DMA transfers need up to %d words but the \
       buffer holds %d; enlarge it or annotate constant-source copies with dma_copy_exclude"
      !total_demand priv_buffer_words;
  let prog = { p with p_globals = p.p_globals @ !new_globals; p_tasks = tasks } in
  validate prog;
  { prog; clear_flags = List.rev !clear; priv_demand_words = !total_demand }
