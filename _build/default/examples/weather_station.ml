(* Weather station: the paper's flagship application (11 tasks, 5 I/O
   functions, DNN inference on the LEA accelerator) executed under each
   runtime on the same emulated energy environment.

   Run with: dune exec examples/weather_station.exe *)

open Platform
open Apps

let () =
  Printf.printf "Weather classifier under intermittent power (one run per runtime)\n\n";
  Printf.printf "%-10s %10s %10s %8s %8s %9s  %s\n" "runtime" "total" "wasted" "PF" "sends"
    "energy" "correct";
  List.iter
    (fun variant ->
      let seed = 11 in
      let m = Machine.create ~seed ~failure:Failure.paper_timer () in
      let app, hooks, radio = Weather.build variant m in
      let o = Kernel.Engine.run ~hooks m app in
      Printf.printf "%-10s %8.1fms %8.1fms %8d %8d %7.1fuJ  %s\n"
        (Common.variant_name variant)
        (float_of_int o.Kernel.Engine.total_time_us /. 1000.)
        (float_of_int o.Kernel.Engine.metrics.Kernel.Metrics.wasted_us /. 1000.)
        o.Kernel.Engine.power_failures
        (Periph.Radio.packets_sent radio)
        (o.Kernel.Engine.energy_nj /. 1000.)
        (match o.Kernel.Engine.correct with
        | Some true -> "yes"
        | Some false -> "NO (memory inconsistency)"
        | None -> "?"))
    Common.all_variants;

  (* the single-buffer experiment: EaseIO's regional privatization lets
     the DNN reuse one activation buffer safely *)
  Printf.printf "\nSingle activation buffer, 30 intermittent runs each:\n";
  List.iter
    (fun variant ->
      let bad = ref 0 in
      for seed = 1 to 30 do
        let one =
          Weather.run_once ~buffering:`Single variant ~failure:Failure.paper_timer ~seed
        in
        match one.Expkit.Run.correct with Some false -> incr bad | _ -> ()
      done;
      Printf.printf "  %-10s %d/30 corrupted\n" (Common.variant_name variant) !bad)
    [ Common.Alpaca; Common.Ink; Common.Easeio ]
