(* Datalogger: periodic multi-sensor sampling with the loop-indexed
   lock-flag extension (§6 of the paper). Eight samples are collected
   into a non-volatile log; each loop iteration has its own persistent
   completion flag, so samples taken before a power failure are never
   repeated, while pending ones resume where the loop left off.

   Run with: dune exec examples/datalogger.exe *)

open Platform
open Kernel

let samples = 8

let () =
  let machine = Machine.create ~seed:5 ~failure:Failure.paper_timer () in
  let rt = Easeio.Runtime.create machine in
  let radio = Periph.Radio.create machine in
  let log = Machine.alloc machine Memory.Fram ~name:"app.log" ~words:(2 * samples) in

  let collect =
    {
      Task.name = "collect";
      body =
        (fun m ->
          for i = 0 to samples - 1 do
            (* loop-indexed slots: call sites are distinguished by [i] *)
            let t =
              Easeio.Runtime.call_io rt ~index:i ~name:"Temp" ~sem:Easeio.Semantics.Single
                (fun m -> Periph.Sensors.temperature_dc m)
            in
            let l =
              Easeio.Runtime.call_io rt ~index:i ~name:"Light" ~sem:Easeio.Semantics.Single
                (fun m -> Periph.Sensors.light_lux m)
            in
            Machine.write m Memory.Fram (log + (2 * i)) t;
            Machine.write m Memory.Fram (log + (2 * i) + 1) l;
            (* per-sample processing window *)
            Machine.idle m 900
          done;
          Task.Next "upload");
    }
  in
  let upload =
    {
      Task.name = "upload";
      body =
        (fun m ->
          Easeio.Runtime.call_io_unit rt ~name:"Send" ~sem:Easeio.Semantics.Single (fun _ ->
              Periph.Radio.send_from radio ~src:(Loc.fram log) ~words:(2 * samples));
          Machine.cpu m 500;
          Task.Stop);
    }
  in

  let app = Task.make_app ~name:"datalogger" ~entry:"collect" [ collect; upload ] in
  let o = Engine.run ~hooks:(Easeio.Runtime.hooks rt) machine app in

  Printf.printf "power failures: %d\n" o.Engine.power_failures;
  Printf.printf "sensor reads:   %d temp + %d light (= %d samples, no repeats)\n"
    (Machine.event machine "io:Temp")
    (Machine.event machine "io:Light")
    samples;
  Printf.printf "uploads:        %d\n" (Periph.Radio.packets_sent radio);
  print_endline "log contents (tenths of C, lux):";
  for i = 0 to samples - 1 do
    Printf.printf "  sample %d: %4d  %4d\n" i
      (Machine.read machine Memory.Fram (log + (2 * i)))
      (Machine.read machine Memory.Fram (log + (2 * i) + 1))
  done
