(* Solar logger: trace-driven harvesting. A synthetic "cloudy morning"
   irradiance trace drives the energy model: the device logs sensor
   samples continuously; during bright segments it cruises, during
   cloudy dips the capacitor empties, and the EaseIO annotations keep
   the wasted work bounded while the log stays duplicate-free.

   Run with: dune exec examples/solar_logger.exe *)

open Platform
open Kernel

let samples = 12

(* nJ/us harvested, 50 ms per segment: dawn ramp, clouds, clearing *)
let solar_trace =
  Harvester.trace ~period_us:50_000
    [| 0.3; 0.5; 0.9; 1.4; 0.4; 0.2; 0.1; 0.6; 1.2; 1.8; 2.2; 2.0 |]

let () =
  let capacitor = Capacitor.create ~capacity_nj:30_000. ~on_level_nj:22_000. in
  let machine =
    Machine.create ~seed:7 ~failure:Failure.Energy_driven ~harvester:solar_trace ~capacitor ()
  in
  let rt = Easeio.Runtime.create machine in
  let radio = Periph.Radio.create machine in
  let log = Machine.alloc machine Memory.Fram ~name:"app.log" ~words:samples in
  let cursor = Machine.alloc machine Memory.Fram ~name:"app.cursor" ~words:1 in

  let sample =
    {
      Task.name = "sample";
      body =
        (fun m ->
          let i = Machine.read m Memory.Fram cursor in
          let v =
            Easeio.Runtime.call_io rt ~index:i ~name:"Light"
              ~sem:(Easeio.Semantics.Timely 40_000) (fun m -> Periph.Sensors.light_lux m)
          in
          Machine.write m Memory.Fram (log + i) v;
          (* heavy per-sample processing keeps the duty cycle realistic *)
          Machine.charge m ~us:6_000 ~nj:4_500.;
          Easeio.Runtime.region rt ~id:1 ~vars:[ (Loc.fram cursor, 1) ] (fun () ->
              Machine.write m Memory.Fram cursor (i + 1));
          if i + 1 < samples then Task.Next "sample" else Task.Next "upload");
    }
  in
  let upload =
    {
      Task.name = "upload";
      body =
        (fun _ ->
          Easeio.Runtime.call_io_unit rt ~name:"Send" ~sem:Easeio.Semantics.Single (fun _ ->
              Periph.Radio.send_from radio ~src:(Loc.fram log) ~words:samples);
          Task.Stop);
    }
  in

  let app = Task.make_app ~name:"solar_logger" ~entry:"sample" [ sample; upload ] in
  let o = Engine.run ~hooks:(Easeio.Runtime.hooks rt) machine app in

  Printf.printf "completed:      %b\n" o.Engine.completed;
  Printf.printf "wall clock:     %.1f ms (including recharge intervals)\n"
    (float_of_int o.Engine.total_time_us /. 1000.);
  Printf.printf "power failures: %d (capacitor exhausted during cloudy dips)\n"
    o.Engine.power_failures;
  Printf.printf "sensor reads:   %d for %d samples\n" (Machine.event machine "io:Light") samples;
  Printf.printf "uploads:        %d\n" (Periph.Radio.packets_sent radio);
  print_string "log: ";
  for i = 0 to samples - 1 do
    Printf.printf "%d " (Machine.read machine Memory.Fram (log + i))
  done;
  print_newline ()
