(* Quickstart: a minimal intermittent sense-and-send application built
   directly on the EaseIO runtime API.

   The device wakes up on harvested energy, reads the temperature
   (valid for 10 ms), sends it over the radio exactly once, and stops.
   Power failures are emulated with the paper's U[5 ms, 20 ms] reset
   timer, so tasks are interrupted and re-executed — yet the sensor is
   not re-read while its value is fresh, and the packet is never sent
   twice.

   Run with: dune exec examples/quickstart.exe *)

open Platform
open Kernel

let () =
  (* a machine with the paper's emulated power failures *)
  let machine = Machine.create ~seed:3 ~failure:Failure.paper_timer () in
  let rt = Easeio.Runtime.create machine in
  let radio = Periph.Radio.create machine in

  (* one word of persistent application state *)
  let last_temp = Machine.alloc machine Memory.Fram ~name:"app.last_temp" ~words:1 in

  let sense =
    {
      Task.name = "sense";
      body =
        (fun m ->
          (* Timely: skip the re-read if the previous sample is < 10ms old *)
          let t =
            Easeio.Runtime.call_io rt ~name:"Temp" ~sem:(Easeio.Semantics.Timely 10_000)
              (fun m -> Periph.Sensors.temperature_dc m)
          in
          Machine.write m Memory.Fram last_temp t;
          (* some processing that a power failure can interrupt *)
          Machine.cpu m 4_000;
          Task.Next "send");
    }
  in
  let send =
    {
      Task.name = "send";
      body =
        (fun m ->
          let t = Machine.read m Memory.Fram last_temp in
          (* Single: if the packet went out before a failure, don't
             transmit it again *)
          Easeio.Runtime.call_io_unit rt ~deps:[ "Temp" ] ~name:"Send"
            ~sem:Easeio.Semantics.Single (fun _ -> Periph.Radio.send radio [| t |]);
          Machine.cpu m 3_000;
          Task.Stop);
    }
  in

  let app = Task.make_app ~name:"quickstart" ~entry:"sense" [ sense; send ] in
  let outcome = Engine.run ~hooks:(Easeio.Runtime.hooks rt) machine app in

  Printf.printf "completed:        %b\n" outcome.Engine.completed;
  Printf.printf "power failures:   %d\n" outcome.Engine.power_failures;
  Printf.printf "wall clock:       %.2f ms\n"
    (float_of_int outcome.Engine.total_time_us /. 1000.);
  Printf.printf "energy:           %.1f uJ\n" (outcome.Engine.energy_nj /. 1000.);
  Printf.printf "sensor reads:     %d\n" (Machine.event machine "io:Temp");
  Printf.printf "radio packets:    %d (sent exactly once despite %d failures)\n"
    (Periph.Radio.packets_sent radio) outcome.Engine.power_failures;
  Printf.printf "last temperature: %.1f C\n"
    (float_of_int (Machine.read machine Memory.Fram last_temp) /. 10.)
