(* Compiler explorer: feed a program with EaseIO annotations through the
   compiler front-end and print the transformed source — the OCaml
   rendition of the paper's Fig. 5 (guarded I/O calls, lock flags,
   timestamps, private result copies) and Fig. 6 (regional
   privatization around DMA).

   Run with: dune exec examples/compiler_explorer.exe *)

let source =
  {|
program explorer;

nv int a[4];
nv int b[4];
nv int stdy;
nv int alarm;
vol int buf[4];

task sense {
  int temp;
  int humd;
  io_block(Single) {
    temp = call_io(Temp, Timely, 10ms);
    humd = call_io(Humd, Always);
  }
  if (temp < 100) { stdy = 1; } else { alarm = 1; }
  call_io(Send, Single, temp, humd);
  next move;
}

task move {
  int z;
  z = b[0];
  dma_copy(a[0], b[0], 4);
  dma_copy(a[0], buf[0], 4);
  b[1] = z;
  stop;
}
|}

let () =
  print_endline "=== input program ===";
  print_endline source;
  let prog = Lang.Parser.program source in
  let result = Lang.Transform.apply prog in
  print_endline "=== after the EaseIO compiler front-end ===";
  print_endline (Lang.Pretty.program_to_string result.Lang.Transform.prog);
  Printf.printf "=== metadata ===\n";
  Printf.printf "privatization-buffer demand: %d words\n"
    result.Lang.Transform.priv_demand_words;
  List.iter
    (fun (task, flags) ->
      Printf.printf "flags cleared when %s commits: %s\n" task (String.concat ", " flags))
    result.Lang.Transform.clear_flags
