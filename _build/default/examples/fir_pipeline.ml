(* FIR pipeline: the task-language application with the write-after-read
   DMA hazard (input and output share one non-volatile buffer). Under
   Alpaca/InK a power failure after the store corrupts the signal; the
   EaseIO front-end resolves the fetches to Private and the store to
   Single, keeping every run correct.

   Run with: dune exec examples/fir_pipeline.exe *)

open Platform
open Apps

let () =
  print_endline "The fir_app task-language source (EaseIO annotations inline):";
  print_endline (Fir.source ~exclude_coefs:false);

  Printf.printf "40 intermittent executions per runtime (paper's Fig. 12 protocol):\n\n";
  Printf.printf "%-10s %10s %10s %10s\n" "runtime" "correct" "corrupt" "avg total";
  List.iter
    (fun variant ->
      let bad = ref 0 and total = ref 0 in
      for seed = 1 to 40 do
        let one = Fir.spec.Common.run variant ~failure:Failure.paper_timer ~seed in
        total := !total + one.Expkit.Run.total_us;
        match one.Expkit.Run.correct with Some false -> incr bad | _ -> ()
      done;
      Printf.printf "%-10s %10d %10d %8.1fms\n"
        (Common.variant_name variant) (40 - !bad) !bad
        (float_of_int !total /. 40_000.))
    Common.all_variants
