examples/solar_logger.mli:
