examples/fir_pipeline.mli:
