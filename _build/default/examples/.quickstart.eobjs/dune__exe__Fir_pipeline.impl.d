examples/fir_pipeline.ml: Apps Common Expkit Failure Fir List Platform Printf
