examples/solar_logger.ml: Capacitor Easeio Engine Failure Harvester Kernel Loc Machine Memory Periph Platform Printf Task
