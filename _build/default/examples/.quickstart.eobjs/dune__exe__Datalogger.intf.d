examples/datalogger.mli:
