examples/quickstart.mli:
