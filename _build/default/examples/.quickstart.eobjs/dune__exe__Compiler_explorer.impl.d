examples/compiler_explorer.ml: Lang List Printf String
