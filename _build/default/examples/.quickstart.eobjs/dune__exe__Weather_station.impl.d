examples/weather_station.ml: Apps Common Expkit Failure Kernel List Machine Periph Platform Printf Weather
