examples/quickstart.ml: Easeio Engine Failure Kernel Machine Memory Periph Platform Printf Task
