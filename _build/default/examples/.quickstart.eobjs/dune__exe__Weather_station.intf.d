examples/weather_station.mli:
