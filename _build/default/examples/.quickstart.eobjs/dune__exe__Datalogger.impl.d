examples/datalogger.ml: Easeio Engine Failure Kernel Loc Machine Memory Periph Platform Printf Task
